#pragma once
// apps/bfs: frontier-synchronous breadth-first search on the sp-dag — the
// first application-tier workload (vs the primitive-shaped microbenches in
// src/harness/). Each BFS level is one finish block: the frontier is chunked
// through the shared parallel_for builders, every chunk claims neighbors
// with a CAS on the distance slot, and the next frontier is the set of
// vertices claimed at the new level.
//
// Determinism: level-synchronous BFS assigns every vertex its true BFS
// distance regardless of which chunk's CAS wins a claim race, and the next
// frontier is re-derived by an ordered scan — so the returned distance
// vector is byte-identical across schedulers, allocators, out-sets, and
// batch on/off (the golden-output property apps_golden_test pins).
//
// `batch` routes the per-level fan-out through parallel_for_blocked (one
// batched in-counter increment per 32 chunks) instead of the fork2 splitter
// (one increment per spawn) — the amortization counter_ops_per_edge
// measures.

#include <cstdint>
#include <vector>

#include "sched/runtime.hpp"

namespace spdag::apps {

// Synthetic graph in CSR form, deterministic in (vertices, avg_degree,
// seed). Vertex 0 gets an edge to every k*sqrt(n)-th vertex on top of the
// random targets so the BFS from 0 reaches a large component quickly.
struct bfs_graph {
  std::vector<std::uint32_t> offsets;  // size vertices + 1
  std::vector<std::uint32_t> targets;  // size offsets.back()

  std::uint64_t vertex_count() const noexcept { return offsets.size() - 1; }
  std::uint64_t edge_count() const noexcept { return targets.size(); }
};

bfs_graph make_bfs_graph(std::uint64_t vertices, std::uint64_t avg_degree,
                         std::uint64_t seed);

struct bfs_config {
  std::size_t grain = 64;  // frontier vertices per serial chunk
  bool batch = true;       // blocked (batched) vs fork2 per-level fan-out
};

// Runs BFS from vertex 0 to completion on rt (one rt.run per level) and
// returns the distance vector (-1 = unreachable).
std::vector<std::int32_t> bfs_run(runtime& rt, const bfs_graph& g,
                                  const bfs_config& cfg = {});

}  // namespace spdag::apps
