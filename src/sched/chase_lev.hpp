#pragma once
// Chase-Lev work-stealing deque.
//
// The owner pushes and pops at the bottom (LIFO, cache-friendly for nested
// parallelism); thieves steal from the top (FIFO, steals the largest
// remaining subcomputation). Memory ordering follows Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP'13), the well-tested C11 formulation of Chase & Lev's
// algorithm.
//
// Growth: only the owner grows the buffer; retired buffers are kept until
// the deque is destroyed because a concurrent thief may still be reading
// the old array (the standard leak-until-quiescence reclamation for this
// structure — bounded by log(max size) buffers).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cache_aligned.hpp"

namespace spdag {

namespace detail {
// ThreadSanitizer does not model std::atomic_thread_fence, so the proven
// fence-based orderings below look like races to it. Under TSan we upgrade
// the slot and bottom accesses to release/acquire (strictly stronger, so
// still correct) purely to let the tool verify the rest of the system.
#if defined(__SANITIZE_THREAD__)
inline constexpr std::memory_order mo_relaxed = std::memory_order_seq_cst;
#else
inline constexpr std::memory_order mo_relaxed = std::memory_order_relaxed;
#endif
inline constexpr std::memory_order mo_slot_store = mo_relaxed;
inline constexpr std::memory_order mo_slot_load = mo_relaxed;
inline constexpr std::memory_order mo_bottom_store = mo_relaxed;
}  // namespace detail

template <typename T>
class chase_lev_deque {
 public:
  explicit chase_lev_deque(std::size_t initial_log_capacity = 8)
      : buffer_(new ring(initial_log_capacity)) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  // Owner only.
  void push_bottom(T* x) {
    const std::int64_t b = bottom_.value.load(detail::mo_relaxed);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    ring* a = buffer_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) {
      a = grow(a, b, t);
    }
    a->put(b, x);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.value.store(b + 1, detail::mo_bottom_store);
  }

  // Owner only. Returns nullptr when empty (or when the last element was
  // lost to a concurrent thief).
  T* pop_bottom() {
    const std::int64_t b = bottom_.value.load(detail::mo_relaxed) - 1;
    ring* a = buffer_.load(std::memory_order_relaxed);
    bottom_.value.store(b, detail::mo_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.value.load(detail::mo_relaxed);
    T* x = nullptr;
    if (t <= b) {
      x = a->get(b);
      if (t == b) {
        // Last element: race with thieves through the top CAS.
        if (!top_.value.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                std::memory_order_relaxed)) {
          x = nullptr;
        }
        bottom_.value.store(b + 1, detail::mo_bottom_store);
      }
    } else {
      bottom_.value.store(b + 1, detail::mo_bottom_store);
    }
    return x;
  }

  // Any thread. Returns nullptr when the deque looks empty or the steal
  // lost a race (callers treat both as "try elsewhere").
  T* steal_top() {
    std::int64_t t = top_.value.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    ring* a = buffer_.load(std::memory_order_acquire);
    T* x = a->get(t);
    if (!top_.value.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
      return nullptr;
    }
    return x;
  }

  // Racy size estimate (scheduling heuristics / tests at quiescence).
  std::int64_t size_estimate() const noexcept {
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const noexcept { return size_estimate() == 0; }

  std::size_t capacity() const noexcept {
    return static_cast<std::size_t>(
        buffer_.load(std::memory_order_acquire)->capacity);
  }

 private:
  struct ring {
    explicit ring(std::size_t log_cap)
        : capacity(std::int64_t{1} << log_cap),
          mask(capacity - 1),
          slots(new std::atomic<T*>[static_cast<std::size_t>(capacity)]) {}

    T* get(std::int64_t i) const noexcept {
      return slots[i & mask].load(detail::mo_slot_load);
    }
    void put(std::int64_t i, T* x) noexcept {
      slots[i & mask].store(x, detail::mo_slot_store);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  // Owner only.
  ring* grow(ring* old, std::int64_t b, std::int64_t t) {
    auto bigger = std::make_unique<ring>(
        static_cast<std::size_t>(__builtin_ctzll(static_cast<unsigned long long>(
            old->capacity))) + 1);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    ring* fresh = bigger.get();
    retired_.emplace_back(std::move(bigger));
    buffer_.store(fresh, std::memory_order_release);
    return fresh;
  }

  cache_aligned<std::atomic<std::int64_t>> top_{0};
  cache_aligned<std::atomic<std::int64_t>> bottom_{0};
  std::atomic<ring*> buffer_;
  std::vector<std::unique_ptr<ring>> retired_;  // owner-mutated only
};

}  // namespace spdag
