#include "mem/slab_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "mem/epoch.hpp"
#include "obs/trace.hpp"

namespace spdag {

namespace {

// Tagged 48-bit pointer + 16-bit monotone tag (canonical user-space
// addresses), the same ABA defense as util/treiber_stack.
constexpr std::uint64_t ptr_mask = (1ULL << 48) - 1;

std::uint64_t pack(void* p, std::uint64_t tag) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & ptr_mask) | (tag << 48);
}
void* ptr_of(std::uint64_t v) noexcept {
  return reinterpret_cast<void*>(v & ptr_mask);
}
std::uint64_t tag_of(std::uint64_t v) noexcept { return v >> 48; }

constexpr std::size_t round_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

// Stamp encoding: 0 = never allocated; otherwise (slot + 2), where slot -1
// is the magazine-less bypass path.
std::uint64_t stamp_for(int slot) noexcept {
  return static_cast<std::uint64_t>(slot + 2);
}

// Single-writer counter increment: magazine counters are only written by
// the slot's owner, so a plain load+store (no locked RMW) is exact, and
// being atomic keeps cross-thread stats() reads clean.
void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

// Per-thread xorshift for randomized elimination-slot selection. Seeded
// from a process-wide counter (not the clock) so two threads starting
// together still probe different slots.
std::uint32_t elim_rand() noexcept {
  static std::atomic<std::uint32_t> g_seed{0x9e3779b9u};
  static thread_local std::uint32_t state =
      g_seed.fetch_add(0x9e3779b9u, std::memory_order_relaxed) | 1u;
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

}  // namespace

slab_cache::slab_cache(std::string name, std::size_t object_bytes,
                       std::size_t object_align, std::size_t slab_bytes,
                       std::size_t magazine_bytes, bool adaptive, bool elim)
    : object_pool(std::move(name), object_bytes, object_align) {
  if (object_bytes == 0) {
    throw std::invalid_argument("slab_cache: zero object size");
  }
  std::size_t align = object_align < sizeof(void*) ? sizeof(void*) : object_align;
  // Header: link at cell start, stamp in the 8 bytes before the object.
  hdr_space_ = round_up(2 * sizeof(std::uint64_t), align);
  stride_ = round_up(hdr_space_ + object_bytes, align);
  slab_align_ = align < cache_line_size ? cache_line_size : align;
  slab_bytes_ = round_up(slab_bytes < stride_ ? stride_ : slab_bytes, slab_align_);
  // Magazine capacity by object geometry: as many cells as the byte budget
  // holds, clamped — deep magazines for small cells, shallow for big ones.
  mag_bytes_ = magazine_bytes == 0 ? default_magazine_bytes : magazine_bytes;
  const std::size_t by_budget = mag_bytes_ / stride_;
  mag_slots_ = by_budget < mag_cap_min
                   ? mag_cap_min
                   : (by_budget > mag_cap_max
                          ? mag_cap_max
                          : static_cast<std::uint32_t>(by_budget));
  adaptive_ = adaptive;
  elim_ = elim;
  // Adaptive magazines start small (room to grow under thrash AND shrink
  // head-room already used); fixed magazines use the full derived capacity.
  initial_cap_ =
      adaptive_ ? (mag_slots_ / 4 < mag_cap_min ? mag_cap_min : mag_slots_ / 4)
                : mag_slots_;
}

slab_cache::~slab_cache() {
  // Run any limbo callbacks still pointing at this pool before the member
  // counters they touch disappear (quiescent by the pool's own lifetime
  // contract — no reader outlives its pool).
  mem::epoch::flush_owner(this);
  for (auto& slot : mags_) {
    magazine* m = slot.load(std::memory_order_acquire);
    if (m != nullptr) magazine_destroy(m);
  }
  for (void* slab : slabs_) std::free(slab);
}

slab_cache::magazine* slab_cache::magazine_create(std::uint32_t slots,
                                                  std::uint32_t cap0) {
  // Variably-sized: the item array trails the header, sized for the pool's
  // geometry-derived slot count (the adaptive cap moves beneath it).
  const std::size_t bytes =
      sizeof(magazine) + static_cast<std::size_t>(slots) * sizeof(void*);
  void* raw = ::operator new(bytes, std::align_val_t{alignof(magazine)});
  return ::new (raw) magazine(cap0);
}

void slab_cache::magazine_destroy(magazine* m) noexcept {
  m->~magazine();
  ::operator delete(m, std::align_val_t{alignof(magazine)});
}

slab_cache::magazine& slab_cache::mag(int slot) {
  magazine* m = mags_[slot].load(std::memory_order_acquire);
  if (m == nullptr) {
    m = magazine_create(mag_slots_, initial_cap_);
    mags_[slot].store(m, std::memory_order_release);
  }
  return *m;
}

// Restamps the cell for its new owner; true iff it had a previous life.
bool slab_cache::restamp(void* p, int slot) noexcept {
  auto* st = stamp_of(p);
  const bool recycled = st->load(std::memory_order_relaxed) != 0;
  st->store(stamp_for(slot), std::memory_order_relaxed);
  return recycled;
}

void* slab_cache::allocate() {
  const int slot = mem::thread_slot();
  if (slot >= 0) {
    magazine& m = mag(slot);
    ++m.since_cycle;
    std::uint32_t cnt = m.count.load(std::memory_order_relaxed);
    if (cnt == 0) {
      refill(m);
      cnt = m.count.load(std::memory_order_relaxed);
    }
    void* p = m.items()[cnt - 1];
    m.count.store(cnt - 1, std::memory_order_relaxed);
    bump(m.allocs);
    if (restamp(p, slot)) bump(m.recycles);
    return p;
  }
  // Over-subscribed thread: no magazine, straight to the shared layers —
  // elimination rendezvous first, then the recycle list.
  void* p = elim_ ? try_elim_take() : nullptr;
  if (p == nullptr) {
    // pop_global reads the link of a cell a racing thread may pop and a
    // racing trim_live may retire; the pin keeps that stale read mapped.
    mem::epoch::pin_guard pin;
    p = pop_global();
  }
  if (p == nullptr) {
    std::uint32_t got = 0;
    carve(&p, 1, got);
  }
  g_allocs_.fetch_add(1, std::memory_order_relaxed);
  if (restamp(p, slot)) g_recycles_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void slab_cache::deallocate(void* p) noexcept {
  const int slot = mem::thread_slot();
  const bool remote =
      stamp_of(p)->load(std::memory_order_relaxed) != stamp_for(slot);
  // Peek, don't create: a free must never allocate (this function is
  // noexcept), so a thread whose first contact with this pool is a
  // cross-worker free pushes straight to the global list; its magazine is
  // created by its first allocate().
  magazine* m =
      slot >= 0 ? mags_[slot].load(std::memory_order_acquire) : nullptr;
  if (m != nullptr) {
    ++m->since_cycle;
    bump(m->frees);
    if (remote) bump(m->remote_frees);
    std::uint32_t cnt = m->count.load(std::memory_order_relaxed);
    // >= rather than ==: an adaptive shrink can leave count above the new
    // effective cap; the next free sheds the excess in one flush.
    if (cnt >= m->cap.load(std::memory_order_relaxed)) {
      flush(*m);
      cnt = m->count.load(std::memory_order_relaxed);
    }
    m->items()[cnt] = p;
    m->count.store(cnt + 1, std::memory_order_relaxed);
    return;
  }
  g_frees_.fetch_add(1, std::memory_order_relaxed);
  if (remote) g_remote_frees_.fetch_add(1, std::memory_order_relaxed);
  // Diffuse the cross-worker free: park on a rendezvous slot when one is
  // open so a racing (or imminent) refill miss takes it there, off the
  // recycle list's hot line.
  if (elim_ && try_elim_put(p)) return;
  push_global(p, p, 1);
}

// Owner-thread resize decision, taken at every global-list trip (refill or
// flush). `since_cycle` is the local traffic since the previous trip: less
// than one capacity of it means the magazine ping-pongs against the global
// recycle list (grow for hysteresis); more than 64 capacities means the
// magazine is oversized for this worker's traffic (shrink to cut stranding).
// The band between the two thresholds is deliberately wide — caps settle
// instead of oscillating.
void slab_cache::adapt(magazine& m) noexcept {
  const std::uint32_t gap = m.since_cycle;
  m.since_cycle = 0;
  if (!adaptive_) return;
  // The first trip after creation (or a trim reset) necessarily has a tiny
  // gap — the magazine was empty, not thrashing. Arm the signal instead.
  if (!m.primed) {
    m.primed = true;
    return;
  }
  const std::uint32_t cap = m.cap.load(std::memory_order_relaxed);
  if (gap < cap && cap < mag_slots_) {
    const std::uint32_t next = cap * 2 > mag_slots_ ? mag_slots_ : cap * 2;
    m.cap.store(next, std::memory_order_relaxed);
    bump(m.grows);
  } else if (gap > 64u * cap && cap > mag_cap_min) {
    m.cap.store(cap / 2, std::memory_order_relaxed);
    bump(m.shrinks);
  }
}

void slab_cache::refill(magazine& m) {
  bump(m.refills);
  adapt(m);
  const std::uint32_t batch = m.cap.load(std::memory_order_relaxed) / 2;
  void** items = m.items();
  std::uint32_t cnt = 0;
  // A refill is the consumer side of the elimination rendezvous: harvest
  // parked cross-worker frees before contending on the recycle list.
  if (elim_) {
    while (cnt < batch) {
      void* p = try_elim_take();
      if (p == nullptr) break;
      items[cnt++] = p;
    }
  }
  {
    // Pin across the pop batch (see allocate's bypass path). Workers are
    // already pinned by their loop — this only bumps their nesting depth.
    mem::epoch::pin_guard pin;
    while (cnt < batch) {
      void* p = pop_global();
      if (p == nullptr) break;
      items[cnt++] = p;
    }
  }
  if (cnt == 0) {
    carve(items, batch, cnt);
  }
  m.count.store(cnt, std::memory_order_relaxed);
  obs::emit(obs::ev_mag_refill, 0, cnt);
}

void slab_cache::flush(magazine& m) noexcept {
  bump(m.flushes);
  adapt(m);
  // Hand everything above half the (possibly just-resized) cap back; link
  // it into one chain, publish with one CAS. A grow can raise the cap past
  // the current fill, in which case there is nothing to shed.
  const std::uint32_t keep = m.cap.load(std::memory_order_relaxed) / 2;
  std::uint32_t cnt = m.count.load(std::memory_order_relaxed);
  if (cnt <= keep) return;
  void** items = m.items();
  // Offer the top shed cell to the elimination array first: a flush is a
  // producer-side burst, and one parked cell is enough to let the next
  // refill miss rendezvous off the hot line. The rest still travels as one
  // chain push.
  if (elim_ && try_elim_put(items[cnt - 1])) {
    --cnt;
    m.count.store(cnt, std::memory_order_relaxed);
    if (cnt <= keep) return;
  }
  void* first = items[cnt - 1];
  void* last = items[keep];
  for (std::uint32_t i = cnt - 1; i > keep; --i) {
    link_of(items[i])->store(items[i - 1], std::memory_order_relaxed);
  }
  m.count.store(keep, std::memory_order_relaxed);
  push_global(first, last, cnt - keep);
  obs::emit(obs::ev_mag_flush, 0, cnt - keep);
}

void slab_cache::carve(void** out, std::uint32_t want, std::uint32_t& got) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  for (got = 0; got < want; ++got) {
    if (cursor_ == nullptr ||
        cursor_ + stride_ > slab_end_) {
      if (got > 0) break;  // partial batch is fine once we have one cell
      void* raw = std::aligned_alloc(slab_align_, slab_bytes_);
      if (raw == nullptr) throw std::bad_alloc{};
      slabs_.push_back(raw);
      slab_growths_.fetch_add(1, std::memory_order_relaxed);
      obs::emit(obs::ev_slab_carve, 0,
                static_cast<std::uint32_t>(slab_bytes_ / 1024));
      obs::gauge_add(obs::g_slab_kib,
                     static_cast<std::int64_t>(slab_bytes_ / 1024));
      cursor_ = static_cast<char*>(raw);
      slab_end_ = cursor_ + slab_bytes_;
    }
    void* obj = cursor_ + hdr_space_;
    cursor_ += stride_;
    ::new (link_of(obj)) std::atomic<void*>(nullptr);
    ::new (stamp_of(obj)) std::atomic<std::uint64_t>(0);
    out[got] = obj;
  }
  carved_.fetch_add(got, std::memory_order_relaxed);
}

void* slab_cache::pop_global() noexcept {
  std::uint64_t head = global_head_.load(std::memory_order_acquire);
  for (;;) {
    void* top = ptr_of(head);
    if (top == nullptr) return nullptr;
    void* next = link_of(top)->load(std::memory_order_relaxed);
    const std::uint64_t fresh = pack(next, tag_of(head) + 1);
    if (global_head_.compare_exchange_weak(head, fresh,
                                           std::memory_order_acquire,
                                           std::memory_order_acquire)) {
      global_cells_.fetch_sub(1, std::memory_order_relaxed);
      return top;
    }
  }
}

void slab_cache::push_global(void* first, void* last,
                             std::uint32_t n) noexcept {
  std::uint64_t head = global_head_.load(std::memory_order_acquire);
  for (;;) {
    link_of(last)->store(ptr_of(head), std::memory_order_relaxed);
    const std::uint64_t fresh = pack(first, tag_of(head) + 1);
    if (global_head_.compare_exchange_weak(head, fresh,
                                           std::memory_order_release,
                                           std::memory_order_acquire)) {
      global_cells_.fetch_add(n, std::memory_order_relaxed);
      return;
    }
  }
}

// Offer one free cell to the elimination array: bounded randomized probing
// for an empty slot, park with one CAS. No dereference of anything unowned
// happens here — the CAS transfers full ownership of `p` into the slot.
// Every probed slot occupied means the array is saturated (producers are
// outrunning consumers); the caller falls through to the Treiber push and
// the miss is tallied as a timeout.
bool slab_cache::try_elim_put(void* p) noexcept {
  // Pin around the slot walk (mem/epoch.hpp): not for `p` — we own it —
  // but to mirror take's discipline so every elimination-array access runs
  // under the same reclamation argument as pop_global's link walks.
  mem::epoch::pin_guard pin;
  std::uint32_t at = elim_rand();
  for (std::size_t i = 0; i < elim_put_probes; ++i, ++at) {
    std::atomic<void*>& slot = elim_slots_[at % elim_slot_count].cell;
    void* cur = slot.load(std::memory_order_relaxed);
    if (cur == nullptr &&
        slot.compare_exchange_strong(cur, p, std::memory_order_release,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  elim_timeouts_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

// Claim a parked cell: walk every slot from a randomized start, take the
// first non-empty one with a single CAS. The load-then-CAS window may race
// another taker or a trim drain — whoever wins the CAS owns the cell, the
// loser never dereferences it. The pin keeps the loaded pointer's storage
// mapped across that window (src/mem/epoch.hpp), the same argument the
// recycle list's pop makes.
void* slab_cache::try_elim_take() noexcept {
  mem::epoch::pin_guard pin;
  const std::uint32_t start = elim_rand();
  for (std::size_t i = 0; i < elim_slot_count; ++i) {
    std::atomic<void*>& slot =
        elim_slots_[(start + i) % elim_slot_count].cell;
    void* cur = slot.load(std::memory_order_acquire);
    if (cur != nullptr &&
        slot.compare_exchange_strong(cur, nullptr, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      eliminations_.fetch_add(1, std::memory_order_relaxed);
      obs::emit(obs::ev_eliminate, 0, 1);
      return cur;
    }
  }
  return nullptr;
}

// Take-CAS per slot (not a plain exchange) so trim_live can run this against
// concurrent rendezvous traffic; at quiescence it degenerates to a walk of
// empty-or-ours slots. Drained cells do NOT count as eliminations — no
// allocation matched them.
void slab_cache::drain_elim(std::vector<void*>& out) noexcept {
  if (!elim_) return;
  for (auto& s : elim_slots_) {
    void* cur = s.cell.load(std::memory_order_acquire);
    if (cur != nullptr &&
        s.cell.compare_exchange_strong(cur, nullptr,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      out.push_back(cur);
    }
  }
}

// Quiescent-only (contract in pool.hpp): no thread is inside allocate/
// deallocate, and the caller's synchronization (scheduler park/join, thread
// join in tests) ordered every worker's last pool access before this call —
// which is what licenses the plain cross-thread magazine accesses below.
std::size_t slab_cache::trim() {
  trims_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(grow_mu_);

  // 1. Empty every magazine into a scratch list and reset its adaptive
  //    state, so post-trim traffic re-learns its capacity from scratch.
  std::vector<void*> free_cells;
  for (auto& slot : mags_) {
    magazine* m = slot.load(std::memory_order_acquire);
    if (m == nullptr) continue;
    const std::uint32_t cnt = m->count.load(std::memory_order_relaxed);
    void** items = m->items();
    for (std::uint32_t i = 0; i < cnt; ++i) free_cells.push_back(items[i]);
    m->count.store(0, std::memory_order_relaxed);
    m->since_cycle = 0;
    m->primed = false;
    m->cap.store(initial_cap_, std::memory_order_relaxed);
  }

  // 2. Drain the global recycle list and any cells parked on elimination
  //    slots (at quiescence nothing is mid-rendezvous, so this empties the
  //    array for good).
  for (void* p = pop_global(); p != nullptr; p = pop_global()) {
    free_cells.push_back(p);
  }
  drain_elim(free_cells);
  if (slabs_.empty()) return 0;

  // 3. Per-slab occupancy: a slab whose every carved cell is in the free
  //    set owes nothing to any live pointer and can go back upstream. Cells
  //    don't record their slab, so locate each by address range.
  std::vector<char*> bases;
  bases.reserve(slabs_.size());
  for (void* s : slabs_) bases.push_back(static_cast<char*>(s));
  std::sort(bases.begin(), bases.end());
  auto slab_index = [&](void* cell) {
    auto it = std::upper_bound(bases.begin(), bases.end(),
                               static_cast<char*>(cell));
    return static_cast<std::size_t>(it - bases.begin()) - 1;
  };
  std::vector<std::size_t> freed(bases.size(), 0);
  for (void* c : free_cells) ++freed[slab_index(c)];

  // Every slab is fully carved except the one the cursor still points into.
  const std::size_t cells_per_slab = slab_bytes_ / stride_;
  const char* cursor_base =
      cursor_ == nullptr ? nullptr : static_cast<char*>(slabs_.back());
  std::vector<char> release(bases.size(), 0);
  std::size_t released = 0;
  std::size_t released_cells = 0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const std::size_t carved_here =
        bases[i] == cursor_base
            ? static_cast<std::size_t>(cursor_ - bases[i]) / stride_
            : cells_per_slab;
    release[i] = freed[i] == carved_here ? 1 : 0;
    released += release[i];
    if (release[i]) released_cells += carved_here;
  }

  // 4. Cells in retained slabs (pinned by live neighbors) go back onto the
  //    global recycle list as one chain; cells in released slabs vanish
  //    with their storage.
  void* head = nullptr;
  void* tail = nullptr;
  std::uint32_t kept_cells = 0;
  for (void* c : free_cells) {
    if (release[slab_index(c)]) continue;
    link_of(c)->store(head, std::memory_order_relaxed);
    if (head == nullptr) tail = c;
    head = c;
    ++kept_cells;
  }
  if (kept_cells > 0) push_global(head, tail, kept_cells);

  // 5. Return the free slabs upstream.
  if (released > 0) {
    std::vector<void*> kept;
    kept.reserve(slabs_.size() - released);
    for (void* s : slabs_) {
      const std::size_t i = static_cast<std::size_t>(
          std::lower_bound(bases.begin(), bases.end(), static_cast<char*>(s)) -
          bases.begin());
      if (release[i]) {
        if (static_cast<char*>(s) == cursor_base) {
          cursor_ = nullptr;
          slab_end_ = nullptr;
        }
        std::free(s);
      } else {
        kept.push_back(s);
      }
    }
    slabs_.swap(kept);
    slabs_released_.fetch_add(released, std::memory_order_relaxed);
    cells_released_.fetch_add(released_cells, std::memory_order_relaxed);
    obs::emit(obs::ev_slab_release, 0,
              static_cast<std::uint32_t>(released));
    obs::gauge_add(obs::g_slab_kib,
                   -static_cast<std::int64_t>(released * slab_bytes_ / 1024));
  }
  return released;
}

// Live-traffic trim (contract in pool.hpp): concurrent allocate/deallocate
// is legal. Only the global recycle list is harvested — magazine cells
// belong to their owner threads and count as in use — and fully-free slabs
// are retired into epoch limbo instead of freed. Conservatism under races:
// a cell freed concurrently with the drain either makes it into our set
// (fine) or lands back on the list after it (its slab just looks occupied
// this round); a concurrent carve only appends a new slab, which the
// cursor-slab exclusion below already spares.
std::size_t slab_cache::trim_live() {
  if (!mem::epoch::enabled()) return 0;
  trims_.fetch_add(1, std::memory_order_relaxed);
  // Pin for our own pop_global link walks.
  mem::epoch::pin_guard pin;

  // 1. Drain the recycle list, bounded by its length at entry so this
  //    cannot chase a storm of concurrent frees forever.
  std::vector<void*> free_cells;
  std::uint64_t bound = global_cells_.load(std::memory_order_acquire);
  free_cells.reserve(static_cast<std::size_t>(bound));
  while (bound-- > 0) {
    void* p = pop_global();
    if (p == nullptr) break;
    free_cells.push_back(p);
  }
  // Parked elimination cells are free too; the take-CAS inside drain_elim
  // makes this safe against a rendezvous racing us (we already hold a pin).
  drain_elim(free_cells);
  if (free_cells.empty()) return 0;

  std::size_t retired = 0;
  std::size_t retired_cells = 0;
  {
    std::lock_guard<std::mutex> lock(grow_mu_);

    // 2. Per-slab occupancy over OUR drained set only (same address-range
    //    location as trim()).
    std::vector<char*> bases;
    bases.reserve(slabs_.size());
    for (void* s : slabs_) bases.push_back(static_cast<char*>(s));
    std::sort(bases.begin(), bases.end());
    auto slab_index = [&](void* cell) {
      auto it = std::upper_bound(bases.begin(), bases.end(),
                                 static_cast<char*>(cell));
      return static_cast<std::size_t>(it - bases.begin()) - 1;
    };
    std::vector<std::size_t> freed(bases.size(), 0);
    for (void* c : free_cells) ++freed[slab_index(c)];

    // 3. A slab is retireable when every cell it ever carved is in our
    //    hands. The cursor slab is never retired: it is partially carved,
    //    about to serve the next carve anyway, and sparing it means every
    //    limbo slab has exactly slab_bytes_/stride_ cells — which is what
    //    lets reclaim_slab() keep the limbo_cells gauge without a per-slab
    //    side table.
    const std::size_t cells_per_slab = slab_bytes_ / stride_;
    const char* cursor_base =
        cursor_ == nullptr ? nullptr : static_cast<char*>(slabs_.back());
    std::vector<char> retire_flag(bases.size(), 0);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (bases[i] != cursor_base && freed[i] == cells_per_slab) {
        retire_flag[i] = 1;
        ++retired;
        retired_cells += cells_per_slab;
      }
    }

    // 4. Cells of surviving slabs go back onto the recycle list as one
    //    chain; cells of retired slabs ride into limbo with their slab.
    void* head = nullptr;
    void* tail = nullptr;
    std::uint32_t kept_cells = 0;
    for (void* c : free_cells) {
      if (retire_flag[slab_index(c)]) continue;
      link_of(c)->store(head, std::memory_order_relaxed);
      if (head == nullptr) tail = c;
      head = c;
      ++kept_cells;
    }
    if (kept_cells > 0) push_global(head, tail, kept_cells);

    // 5. Retire: out of slabs_ and into epoch limbo. The storage stays
    //    mapped until reclaim_slab runs, so a reader pinned right now may
    //    still dereference these cells safely.
    if (retired > 0) {
      std::vector<void*> kept;
      kept.reserve(slabs_.size() - retired);
      for (void* s : slabs_) {
        const std::size_t i = static_cast<std::size_t>(
            std::lower_bound(bases.begin(), bases.end(),
                             static_cast<char*>(s)) -
            bases.begin());
        if (retire_flag[i]) {
          mem::epoch::retire(&slab_cache::reclaim_slab, this, s);
        } else {
          kept.push_back(s);
        }
      }
      slabs_.swap(kept);
    }
  }
  if (retired > 0) {
    slabs_retired_.fetch_add(retired, std::memory_order_relaxed);
    cells_released_.fetch_add(retired_cells, std::memory_order_relaxed);
    limbo_cells_.fetch_add(retired_cells, std::memory_order_relaxed);
    obs::emit(obs::ev_slab_retire, 0, static_cast<std::uint32_t>(retired));
  }
  return retired;
}

void slab_cache::reclaim_slab(void* self, void* slab) noexcept {
  auto* c = static_cast<slab_cache*>(self);
  std::free(slab);
  c->slabs_reclaimed_.fetch_add(1, std::memory_order_relaxed);
  c->limbo_cells_.fetch_sub(c->slab_bytes_ / c->stride_,
                            std::memory_order_relaxed);
  obs::emit(obs::ev_slab_reclaim, 0,
            static_cast<std::uint32_t>(c->slab_bytes_ / 1024));
  obs::gauge_add(obs::g_slab_kib,
                 -static_cast<std::int64_t>(c->slab_bytes_ / 1024));
}

pool_stats slab_cache::stats() const {
  pool_stats s;
  s.allocs = g_allocs_.load(std::memory_order_relaxed);
  s.frees = g_frees_.load(std::memory_order_relaxed);
  s.recycles = g_recycles_.load(std::memory_order_relaxed);
  s.remote_frees = g_remote_frees_.load(std::memory_order_relaxed);
  s.carved = carved_.load(std::memory_order_relaxed);
  s.slab_growths = slab_growths_.load(std::memory_order_relaxed);
  s.trims = trims_.load(std::memory_order_relaxed);
  s.slabs_released = slabs_released_.load(std::memory_order_relaxed);
  s.cells_released = cells_released_.load(std::memory_order_relaxed);
  s.slabs_retired = slabs_retired_.load(std::memory_order_relaxed);
  s.slabs_reclaimed = slabs_reclaimed_.load(std::memory_order_relaxed);
  s.recycle_cells = global_cells_.load(std::memory_order_relaxed);
  s.limbo_cells = limbo_cells_.load(std::memory_order_relaxed);
  s.eliminations = eliminations_.load(std::memory_order_relaxed);
  s.elim_timeouts = elim_timeouts_.load(std::memory_order_relaxed);
  if (elim_) {
    // Parked cells are pool-retained exactly like recycle-list cells; fold
    // them into the gauge so retained() covers the elimination array.
    for (const auto& es : elim_slots_) {
      if (es.cell.load(std::memory_order_relaxed) != nullptr) {
        ++s.recycle_cells;
      }
    }
  }
  for (const auto& slot : mags_) {
    const magazine* m = slot.load(std::memory_order_acquire);
    if (m == nullptr) continue;
    s.allocs += m->allocs.load(std::memory_order_relaxed);
    s.frees += m->frees.load(std::memory_order_relaxed);
    s.recycles += m->recycles.load(std::memory_order_relaxed);
    s.remote_frees += m->remote_frees.load(std::memory_order_relaxed);
    s.magazine_refills += m->refills.load(std::memory_order_relaxed);
    s.magazine_flushes += m->flushes.load(std::memory_order_relaxed);
    s.mag_grows += m->grows.load(std::memory_order_relaxed);
    s.mag_shrinks += m->shrinks.load(std::memory_order_relaxed);
    s.magazine_cells += m->count.load(std::memory_order_relaxed);
    const std::uint64_t cap = m->cap.load(std::memory_order_relaxed);
    if (s.mag_cap_lo == 0 || cap < s.mag_cap_lo) s.mag_cap_lo = cap;
    if (cap > s.mag_cap_hi) s.mag_cap_hi = cap;
  }
  return s;
}

std::size_t slab_cache::slab_count() const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  return slabs_.size();
}

}  // namespace spdag
